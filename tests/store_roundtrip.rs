//! `.pqa` store integration tests: lossless round-trips against the
//! in-RAM analysis program, time-range pruning, crash/corruption
//! tolerance, and JSON back-compatibility.

use printqueue::core::coefficient::Coefficients;
use printqueue::core::control::{AnalysisProgram, ControlConfig};
use printqueue::core::export::CheckpointArchive;
use printqueue::core::params::TimeWindowConfig;
use printqueue::core::snapshot::QueryInterval;
use printqueue::packet::FlowId;
use printqueue::store::{
    archives_to_pqa, ship_archive, verify_replica, ArchiveFormat, Recovery, SegmentPolicy,
    SharedStoreWriter, StoreReader, StoreWriter, KIND_CHECKPOINTS, KIND_RTT,
};
use printqueue::telemetry::{names, Telemetry};
use proptest::prelude::*;
use std::io::Cursor;

const PORTS: [u16; 2] = [0, 3];

fn tw_small() -> TimeWindowConfig {
    // t_set = 64 + 128 = 192 ns: short enough that a modest drive loop
    // yields dozens of checkpoints.
    TimeWindowConfig::new(0, 1, 6, 2)
}

fn tiny_segments() -> SegmentPolicy {
    SegmentPolicy {
        checkpoints_per_segment: 4,
        max_segment_bytes: 1 << 20,
        retain_segments_per_port: None,
    }
}

/// Drive a two-port program for `until` ns with a poll every 64 ns and a
/// silence window (no polls) in the middle that opens a coverage gap.
fn drive_program(spill: Option<SharedStoreWriter<Vec<u8>>>, until: u64) -> AnalysisProgram {
    let tw = tw_small();
    let mut ap = AnalysisProgram::new(
        tw,
        ControlConfig {
            poll_period: 64,
            max_snapshots: 10_000,
        },
        &PORTS,
        32,
        1,
        1,
    );
    if let Some(handle) = spill {
        ap.set_spill(Box::new(handle));
    }
    let silence = 1_000..1_600; // > t_set: forces a recorded gap
    for t in 0..until {
        for (i, &port) in PORTS.iter().enumerate() {
            if t % (i as u64 + 2) == 0 {
                ap.record_dequeue(port, FlowId((t % 7) as u32 + i as u32 * 100), t);
            }
            if t % 5 == 0 {
                ap.qm_enqueue(port, 0, FlowId((t % 3) as u32), (t % 20) as u32, t);
            }
        }
        if t % 64 == 0 && !silence.contains(&t) {
            ap.on_tick(t);
        }
    }
    ap
}

/// Spill a program's checkpoints into an in-memory `.pqa`, mirroring what
/// `pqsim archive --format pqa` does.
fn spill_to_store(until: u64, policy: SegmentPolicy) -> (AnalysisProgram, Vec<u8>) {
    let writer = StoreWriter::new(Vec::new(), tw_small(), policy).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let ap = drive_program(Some(handle.clone()), until);
    for &port in &PORTS {
        handle.with(|w| w.set_health(port, ap.health())).unwrap();
    }
    let bytes = handle.finish().unwrap();
    (ap, bytes)
}

fn sweep_intervals() -> Vec<QueryInterval> {
    vec![
        QueryInterval::new(0, 50),
        QueryInterval::new(100, 300),
        QueryInterval::new(900, 1_700), // straddles the silence gap
        QueryInterval::new(500, 1_999),
        QueryInterval::new(0, 1_999),
        QueryInterval::new(1_900, 5_000), // reaches past the data
        QueryInterval::new(3_000, 4_000), // entirely past the data
    ]
}

#[test]
fn spilled_store_queries_match_live_bit_for_bit() {
    let (ap, bytes) = spill_to_store(2_000, tiny_segments());
    let mut reader = StoreReader::open(Cursor::new(bytes)).unwrap();
    assert_eq!(reader.recovery(), Recovery::Index);
    assert!(
        reader.segments().len() >= 4,
        "expected several segments, got {}",
        reader.segments().len()
    );
    let coeffs = Coefficients::compute(&tw_small(), 1);
    for &port in &PORTS {
        assert_eq!(
            reader.checkpoint_count(port),
            ap.checkpoints(port).len() as u64
        );
        for interval in sweep_intervals() {
            let live = ap.query_time_windows(port, interval);
            let stored = reader.query(port, interval, &coeffs).unwrap();
            // f64 sums accumulate in the same order in both paths, so
            // exact equality is required, not approximate.
            assert_eq!(
                live.estimates.counts, stored.estimates.counts,
                "port {port} interval {interval:?}"
            );
            assert_eq!(live.gaps, stored.gaps, "port {port} interval {interval:?}");
            assert_eq!(live.degraded, stored.degraded);
        }
    }
}

#[test]
fn narrow_queries_prune_segments() {
    let (_ap, bytes) = spill_to_store(4_000, tiny_segments());
    let reader = StoreReader::open(Cursor::new(bytes)).unwrap();
    let interval = QueryInterval::new(100, 300);
    let port0: Vec<_> = reader.segments().iter().filter(|s| s.port == 0).collect();
    let overlapping = port0
        .iter()
        .filter(|s| s.overlaps_query(interval.from, interval.to))
        .count();
    assert!(
        overlapping < port0.len(),
        "narrow interval should prune segments ({overlapping} of {})",
        port0.len()
    );
    assert!(overlapping >= 1);
}

#[test]
fn bit_flip_loses_only_that_segment() {
    let (ap, bytes) = spill_to_store(2_000, tiny_segments());
    let clean = StoreReader::open(Cursor::new(bytes.clone())).unwrap();
    // Pick a middle segment of port 0 and flip one byte inside its body.
    let victims: Vec<_> = clean
        .segments()
        .iter()
        .filter(|s| s.port == 0)
        .copied()
        .collect();
    assert!(victims.len() >= 3);
    let victim = victims[victims.len() / 2];
    let mut corrupted = bytes.clone();
    corrupted[(victim.offset + victim.len - 8) as usize] ^= 0x01;

    let mut reader = StoreReader::open(Cursor::new(corrupted)).unwrap();
    // Trailer untouched: still the indexed fast path.
    assert_eq!(reader.recovery(), Recovery::Index);
    let mut clean_reader = StoreReader::open(Cursor::new(bytes)).unwrap();
    let coeffs = Coefficients::compute(&tw_small(), 1);

    // A query ending at the victim's chain predecessor never touches the
    // victim's checkpoints, so it is identical to the clean store.
    let before = QueryInterval::new(0, victim.prev_periodic.unwrap());
    let clean_q = clean_reader.query(0, before, &coeffs).unwrap();
    let corrupt_q = reader.query(0, before, &coeffs).unwrap();
    assert_eq!(clean_q.estimates.counts, corrupt_q.estimates.counts);
    assert_eq!(clean_q.degraded, corrupt_q.degraded);

    // Port 3 is untouched everywhere.
    for interval in sweep_intervals() {
        let c = clean_reader.query(3, interval, &coeffs).unwrap();
        let d = reader.query(3, interval, &coeffs).unwrap();
        assert_eq!(c.estimates.counts, d.estimates.counts);
        assert_eq!(c.gaps, d.gaps);
    }

    // A query overlapping the victim is flagged degraded with a gap
    // covering the lost span.
    let over = QueryInterval::new(victim.min_t, victim.max_t);
    let q = reader.query(0, over, &coeffs).unwrap();
    assert!(q.degraded, "query over corrupt segment must be degraded");
    assert!(q.gaps.iter().any(|g| g.to >= victim.max_t));

    // read_port skips exactly the victim's checkpoints.
    let full = clean_reader.read_port(0).unwrap();
    let partial = reader.read_port(0).unwrap();
    assert_eq!(
        partial.checkpoints.len(),
        full.checkpoints.len() - victim.count as usize
    );
    assert!(partial.gaps.len() > full.gaps.len());
    // The live program's own queries elsewhere still match.
    let live = ap.query_time_windows(0, before);
    assert_eq!(live.estimates.counts, corrupt_q.estimates.counts);
}

#[test]
fn torn_trailer_recovers_by_scan() {
    let (_ap, bytes) = spill_to_store(2_000, tiny_segments());
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let mut clean_reader = StoreReader::open(Cursor::new(bytes.clone())).unwrap();

    // Corrupt the end magic: the trailer is unlocatable.
    let mut torn = bytes.clone();
    let n = torn.len();
    torn[n - 2] ^= 0xff;
    let mut reader = StoreReader::open(Cursor::new(torn)).unwrap();
    assert_eq!(reader.recovery(), Recovery::Scan);
    // Every segment is still on disk, so queries match the clean store.
    for &port in &PORTS {
        assert_eq!(
            reader.checkpoint_count(port),
            clean_reader.checkpoint_count(port)
        );
        for interval in sweep_intervals() {
            let c = clean_reader.query(port, interval, &coeffs).unwrap();
            let s = reader.query(port, interval, &coeffs).unwrap();
            assert_eq!(c.estimates.counts, s.estimates.counts);
        }
    }
}

#[test]
fn truncated_file_recovers_prefix_and_reports_tail() {
    let (_ap, bytes) = spill_to_store(2_000, tiny_segments());
    let clean = StoreReader::open(Cursor::new(bytes.clone())).unwrap();
    let last = *clean.segments().last().unwrap();
    // Cut mid-body of the last segment: trailer gone, body torn.
    let cut = (last.offset + last.len - 10) as usize;
    let truncated = bytes[..cut].to_vec();

    let mut reader = StoreReader::open(Cursor::new(truncated)).unwrap();
    assert_eq!(reader.recovery(), Recovery::Scan);
    assert!(reader.tail_torn());
    assert_eq!(reader.segments().len(), clean.segments().len() - 1);
    // The torn segment's port knows what it lost.
    let archive = reader.read_port(last.port).unwrap();
    assert!(
        archive.gaps.iter().any(|g| g.to >= last.max_t),
        "torn tail should surface as a gap"
    );
    // Earlier data still decodes.
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let early = QueryInterval::new(0, 500);
    let q = reader.query(0, early, &coeffs).unwrap();
    assert!(!q.estimates.counts.is_empty());
}

#[test]
fn retention_drops_old_segments_and_records_gaps() {
    let policy = SegmentPolicy {
        checkpoints_per_segment: 4,
        max_segment_bytes: 1 << 20,
        retain_segments_per_port: Some(2),
    };
    let (_ap, bytes) = spill_to_store(4_000, policy);
    let mut reader = StoreReader::open(Cursor::new(bytes)).unwrap();
    let port0 = reader.segments().iter().filter(|s| s.port == 0).count();
    assert_eq!(port0, 2, "retention should keep exactly 2 segments");
    // Queries over the dropped prefix come back degraded, not silently
    // empty.
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let q = reader
        .query(0, QueryInterval::new(0, 200), &coeffs)
        .unwrap();
    assert!(q.degraded);
}

#[test]
fn json_archives_convert_losslessly_and_auto_detect() {
    let ap = drive_program(None, 2_000);
    let archives: Vec<CheckpointArchive> = PORTS
        .iter()
        .map(|&p| CheckpointArchive::capture(&ap, p))
        .collect();

    // The historical single-object JSON format still loads.
    let mut legacy = Vec::new();
    archives[0].write_json(&mut legacy).unwrap();
    assert_eq!(ArchiveFormat::sniff(&legacy).unwrap(), ArchiveFormat::Json);
    let parsed =
        printqueue::store::archives_from_json(std::str::from_utf8(&legacy).unwrap()).unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].port, PORTS[0]);
    assert_eq!(parsed[0].checkpoints.len(), archives[0].checkpoints.len());

    // JSON → .pqa → archives is lossless down to the serialized bytes.
    let pqa = archives_to_pqa(Vec::new(), &archives, tiny_segments()).unwrap();
    assert_eq!(ArchiveFormat::sniff(&pqa).unwrap(), ArchiveFormat::Pqa);
    let mut reader = StoreReader::open(Cursor::new(pqa)).unwrap();
    for archive in &archives {
        let back = reader.read_port(archive.port).unwrap();
        assert_eq!(
            serde_json::to_string(archive).unwrap(),
            serde_json::to_string(&back).unwrap(),
            "port {} archive must round-trip bit-exactly",
            archive.port
        );
    }
}

#[test]
fn spilled_store_matches_capture_exactly() {
    // The streaming spill path and the capture-at-end path must agree
    // when the snapshot ring never overflows.
    let (ap, bytes) = spill_to_store(2_000, tiny_segments());
    let mut reader = StoreReader::open(Cursor::new(bytes)).unwrap();
    for &port in &PORTS {
        let captured = CheckpointArchive::capture(&ap, port);
        let stored = reader.read_port(port).unwrap();
        assert_eq!(
            serde_json::to_string(&captured).unwrap(),
            serde_json::to_string(&stored).unwrap()
        );
    }
}

#[test]
fn telemetry_counts_writes_reads_and_spans() {
    // Writer side: counters mirror what lands on disk, segment seals emit
    // segment_flush spans when tracing is on.
    let plane = Telemetry::new();
    plane.set_tracing(true);
    let mut writer = StoreWriter::new(Vec::new(), tw_small(), tiny_segments()).unwrap();
    writer.set_telemetry(&plane);
    let handle = SharedStoreWriter::new(writer);
    let ap = drive_program(Some(handle.clone()), 2_000);
    let bytes = handle.finish().unwrap();

    let snap = plane.snapshot();
    let pushed: u64 = PORTS.iter().map(|&p| ap.checkpoints(p).len() as u64).sum();
    assert_eq!(
        snap.counter(names::STORE_CHECKPOINTS_WRITTEN, &[]),
        Some(pushed)
    );
    let reader = StoreReader::open(Cursor::new(bytes.clone())).unwrap();
    let sealed = reader.segments().len() as u64;
    assert_eq!(
        snap.counter(names::STORE_SEGMENTS_SEALED, &[]),
        Some(sealed)
    );
    let seg_bytes: u64 = reader.segments().iter().map(|s| s.len).sum();
    assert_eq!(
        snap.counter(names::STORE_BYTES_WRITTEN, &[]),
        Some(seg_bytes)
    );
    let flush_spans = plane
        .spans()
        .snapshot()
        .iter()
        .filter(|s| s.name == names::SPAN_SEGMENT_FLUSH)
        .count() as u64;
    assert_eq!(flush_spans, sealed);

    // Reader side: decode counters and a replay_query span per query.
    let read_plane = Telemetry::new();
    read_plane.set_tracing(true);
    let mut reader = StoreReader::open(Cursor::new(bytes)).unwrap();
    reader.set_telemetry(&read_plane);
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let interval = QueryInterval::new(0, 1_999);
    reader.query(0, interval, &coeffs).unwrap();
    let snap = read_plane.snapshot();
    assert!(snap.counter(names::STORE_SEGMENTS_DECODED, &[]).unwrap() >= 1);
    assert!(snap.counter(names::STORE_CHECKPOINTS_DECODED, &[]).unwrap() >= 1);
    let hist = snap.histogram(names::STORE_REPLAY_QUERY_NS, &[]).unwrap();
    assert_eq!(hist.count, 1);
    let spans = read_plane.spans().snapshot();
    let q = spans
        .iter()
        .find(|s| s.name == names::SPAN_REPLAY_QUERY)
        .expect("replay_query span recorded");
    assert_eq!((q.start, q.end), (interval.from, interval.to));
}

/// Rebuild port 0's checkpoints into a fresh store, optionally appending
/// one raw segment of `kind` spanning sim-time 2 500–2 900.
fn store_with_raw(kind: Option<u64>) -> Vec<u8> {
    let ap = drive_program(None, 1_000);
    let mut w = StoreWriter::new(Vec::new(), tw_small(), tiny_segments()).unwrap();
    for cp in ap.checkpoints(0) {
        w.push(0, cp).unwrap();
    }
    if let Some(kind) = kind {
        w.push_raw(0, kind, 3, 2_500, 2_900, b"opaque future bytes")
            .unwrap();
    }
    w.finish().unwrap()
}

#[test]
fn unknown_kind_segments_skip_and_surface_as_distinct_gaps() {
    let bytes = store_with_raw(Some(99));
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let mut plain = StoreReader::open(Cursor::new(store_with_raw(None))).unwrap();

    // Index path and scan path (torn end magic) must agree.
    let mut torn = bytes.clone();
    let n = torn.len();
    torn[n - 2] ^= 0xff;
    for (src, want) in [(bytes.clone(), Recovery::Index), (torn, Recovery::Scan)] {
        let mut reader = StoreReader::open(Cursor::new(src)).unwrap();
        assert_eq!(reader.recovery(), want);
        // The span is surfaced as an unknown-kind gap, not corruption.
        assert_eq!(
            reader.unknown_kind_gaps(),
            &[(
                0,
                printqueue::core::control::CoverageGap {
                    from: 2_500,
                    to: 2_900
                }
            )]
        );
        assert!(!reader.tail_torn() || want == Recovery::Scan);
        // Queries overlapping the span degrade with that gap...
        let q = reader
            .query(0, QueryInterval::new(2_400, 3_000), &coeffs)
            .unwrap();
        assert!(q.degraded);
        assert!(q.gaps.iter().any(|g| g.from == 2_500 && g.to == 2_900));
        // ...while queries elsewhere are bit-identical to a store that
        // never carried the segment.
        let early = QueryInterval::new(0, 500);
        let a = plain.query(0, early, &coeffs).unwrap();
        let b = reader.query(0, early, &coeffs).unwrap();
        assert_eq!(a.estimates.counts, b.estimates.counts);
        assert_eq!(a.gaps, b.gaps);
        // read_port skips the segment but records the loss.
        let archive = reader.read_port(0).unwrap();
        assert!(archive
            .gaps
            .iter()
            .any(|g| g.from == 2_500 && g.to == 2_900));
        // Unknown segments never count as checkpoints.
        assert_eq!(reader.checkpoint_count(0), plain.checkpoint_count(0));
    }
}

#[test]
fn rtt_segments_ride_along_without_gaps() {
    let bytes = store_with_raw(Some(KIND_RTT));
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let mut plain = StoreReader::open(Cursor::new(store_with_raw(None))).unwrap();

    let mut torn = bytes.clone();
    let n = torn.len();
    torn[n - 2] ^= 0xff;
    for src in [bytes.clone(), torn] {
        let mut reader = StoreReader::open(Cursor::new(src)).unwrap();
        // A known kind is data, not a gap.
        assert!(reader.unknown_kind_gaps().is_empty());
        let raw = reader.raw_segments(0, KIND_RTT);
        assert_eq!(raw.len(), 1);
        assert_eq!(
            (raw[0].count, raw[0].min_t, raw[0].max_t),
            (3, 2_500, 2_900)
        );
        assert_eq!(
            reader.read_raw_body(&raw[0]).unwrap(),
            b"opaque future bytes"
        );
        // Checkpoint queries are oblivious to the rider.
        assert_eq!(reader.checkpoint_count(0), plain.checkpoint_count(0));
        for interval in sweep_intervals() {
            let a = plain.query(0, interval, &coeffs).unwrap();
            let b = reader.query(0, interval, &coeffs).unwrap();
            assert_eq!(a.estimates.counts, b.estimates.counts);
            assert_eq!(a.gaps, b.gaps, "interval {interval:?}");
        }
        assert_eq!(
            reader
                .segments()
                .iter()
                .filter(|s| s.kind == KIND_CHECKPOINTS)
                .count(),
            plain.segments().len()
        );
    }
}

#[test]
fn replication_verifies_raw_segments() {
    let tmp =
        |name: &str| std::env::temp_dir().join(format!("pq-rttrepl-{}-{name}", std::process::id()));
    let bytes = store_with_raw(Some(KIND_RTT));
    let src = tmp("src.pqa");
    let dst = tmp("dst.pqa");
    std::fs::write(&src, &bytes).unwrap();
    ship_archive(&src, &dst).unwrap();
    assert_eq!(verify_replica(&src, &dst).unwrap(), None);

    // Same body, same bounds, different kind: not an equivalent replica.
    let other = tmp("kind2.pqa");
    std::fs::write(&other, store_with_raw(Some(2))).unwrap();
    assert!(verify_replica(&src, &other).unwrap().is_some());

    // A corrupted raw body must refuse to ship.
    let clean = StoreReader::open(Cursor::new(bytes.clone())).unwrap();
    let raw = clean.raw_segments(0, KIND_RTT)[0];
    let mut corrupted = bytes;
    corrupted[(raw.offset + raw.len - 8) as usize] ^= 0x01;
    let bad = tmp("bad.pqa");
    let bad_dst = tmp("bad-out.pqa");
    std::fs::write(&bad, &corrupted).unwrap();
    assert!(ship_archive(&bad, &bad_dst).is_err());
    assert!(!bad_dst.exists());
    for p in [src, dst, other, bad] {
        std::fs::remove_file(p).ok();
    }
}

proptest! {
    /// Random single-byte corruption anywhere in a valid store never
    /// panics and never allocates past the decode budget: every outcome
    /// is a clean result or a clean error.
    #[test]
    fn corrupted_store_never_panics(byte in 0usize..6_000, flip in 1u8..=255) {
        let (_ap, bytes) = spill_to_store(1_000, tiny_segments());
        let mut mutated = bytes.clone();
        let idx = byte % mutated.len();
        mutated[idx] ^= flip;
        if let Ok(mut reader) = StoreReader::open(Cursor::new(mutated)) {
            reader.set_decode_budget(8 << 20);
            let coeffs = Coefficients::compute(&tw_small(), 1);
            for &port in &PORTS {
                let _ = reader.read_port(port);
                let _ = reader.query(port, QueryInterval::new(0, 2_000), &coeffs);
            }
        }
    }

    /// Arbitrary bytes behind a valid magic are rejected without panic.
    #[test]
    fn garbage_after_magic_never_panics(tail in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut bytes = b"PQAR".to_vec();
        bytes.extend_from_slice(&tail);
        if let Ok(mut reader) = StoreReader::open(Cursor::new(bytes)) {
            let _ = reader.read_all();
        }
    }

    /// Random drive durations round-trip losslessly through the store.
    #[test]
    fn random_runs_roundtrip(until in 300u64..1_500, per_seg in 1usize..8) {
        let policy = SegmentPolicy {
            checkpoints_per_segment: per_seg,
            max_segment_bytes: 1 << 20,
            retain_segments_per_port: None,
        };
        let (ap, bytes) = spill_to_store(until, policy);
        let mut reader = StoreReader::open(Cursor::new(bytes)).unwrap();
        for &port in &PORTS {
            let captured = CheckpointArchive::capture(&ap, port);
            let stored = reader.read_port(port).unwrap();
            prop_assert_eq!(
                serde_json::to_string(&captured).unwrap(),
                serde_json::to_string(&stored).unwrap()
            );
        }
    }
}
