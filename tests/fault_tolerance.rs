//! Fault-injected control plane: fallible freeze-and-reads, retry/backoff,
//! coverage gaps, and degraded-confidence queries.
//!
//! The analysis program's liveness contract (§6.2: read every register set
//! at least once per t_set) is broken here on purpose — reads fail, take
//! time, or lose their checkpoints — and the control plane must degrade
//! loudly (gaps recorded, answers flagged) instead of silently.

use printqueue::core::faults::StallWindows;
use printqueue::prelude::*;

/// Small windows so one run covers many set periods: t_set ≈ 114.7 µs.
fn small_tw() -> TimeWindowConfig {
    TimeWindowConfig::new(6, 1, 8, 3)
}

/// A steady 10 ms stream keeping the queue busy across ~87 poll periods.
fn steady_arrivals() -> Vec<Arrival> {
    (0..20_000u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId((i % 11) as u32), 800, i * 500), 0))
        .collect()
}

fn run_pq(config: PrintQueueConfig, arrivals: Vec<Arrival>, tick: Nanos) -> (PrintQueue, Nanos) {
    let mut pq = PrintQueue::new(config);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(arrivals, &mut hooks, tick);
    }
    let now = sw.now();
    (pq, now)
}

fn frozen_ats(pq: &PrintQueue) -> Vec<Nanos> {
    pq.analysis()
        .checkpoints(0)
        .iter()
        .map(|c| c.frozen_at)
        .collect()
}

#[test]
fn benign_fault_config_is_behaviorally_identical() {
    // A wired-up injector whose profile can never fire must reproduce the
    // no-injector run exactly: same checkpoints, same answers, no health
    // noise.
    let tw = small_tw();
    let tick = tw.set_period();
    let plain = PrintQueueConfig::single_port(tw, 640);
    let benign = PrintQueueConfig::single_port(tw, 640).with_faults(FaultConfig::new(99));
    let (pq_a, end_a) = run_pq(plain, steady_arrivals(), tick);
    let (pq_b, end_b) = run_pq(benign, steady_arrivals(), tick);

    assert_eq!(end_a, end_b);
    assert_eq!(frozen_ats(&pq_a), frozen_ats(&pq_b));
    assert_eq!(pq_a.analysis().health(), pq_b.analysis().health());
    assert!(pq_a.analysis().coverage_gaps(0).is_empty());
    assert!(pq_b.analysis().coverage_gaps(0).is_empty());

    let interval = QueryInterval::new(0, end_a);
    let est_a = pq_a.analysis().query_time_windows(0, interval);
    let est_b = pq_b.analysis().query_time_windows(0, interval);
    assert_eq!(est_a.counts, est_b.counts);
    assert!(!est_a.degraded && !est_b.degraded);
}

#[test]
fn read_failures_are_retried_with_backoff() {
    // Seeded 20% read-failure rate: failures must show up in the health
    // counters, retries must fire, and enough reads must still land that
    // the checkpoint history stays usable.
    let tw = small_tw();
    let faults = FaultConfig::new(7).with_base(FaultProfile::read_failures(0.2));
    let config = PrintQueueConfig::single_port(tw, 640).with_faults(faults);
    let (pq, _end) = run_pq(config, steady_arrivals(), tw.set_period());

    let health = pq.analysis().health();
    assert!(
        health.polls_failed > 0,
        "20% of reads should fail: {health:?}"
    );
    assert!(
        health.polls_retried > 0,
        "failures must be retried: {health:?}"
    );
    assert!(
        health.polls_attempted > health.checkpoints_stored,
        "retries mean more attempts than stores: {health:?}"
    );
    assert!(
        health.checkpoints_stored > 20,
        "most polls must still succeed: {health:?}"
    );
    assert!((health.poll_failure_rate() - 0.2).abs() < 0.12);
}

#[test]
fn total_read_failure_hits_the_backoff_ceiling() {
    // Every read fails: backoff must grow to its cap (not unbounded, not
    // constant), no checkpoint ever lands, and queries degrade loudly
    // instead of answering from nothing.
    let tw = small_tw();
    let faults = FaultConfig::new(3).with_base(FaultProfile::read_failures(1.0));
    let config = PrintQueueConfig::single_port(tw, 640).with_faults(faults);
    let (pq, end) = run_pq(config, steady_arrivals(), tw.set_period());

    let health = pq.analysis().health();
    assert_eq!(health.checkpoints_stored, 0);
    assert!(health.polls_failed > 10);
    assert!(
        health.backoff_ceiling_hits > 0,
        "persistent failure must reach the backoff cap: {health:?}"
    );
    let est = pq
        .analysis()
        .query_time_windows(0, QueryInterval::new(0, end));
    assert!(
        est.degraded,
        "answer from zero checkpoints must be degraded"
    );
    assert!(!est.gaps.is_empty());
}

#[test]
fn dropped_checkpoints_record_coverage_gaps_and_degrade_queries() {
    // Lost checkpoints stretch the inter-checkpoint distance past t_set;
    // the control plane must record the gap and flag any query that
    // overlaps it.
    let tw = small_tw();
    let profile = FaultProfile {
        drop_checkpoint_prob: 0.6,
        ..FaultProfile::none()
    };
    let config =
        PrintQueueConfig::single_port(tw, 640).with_faults(FaultConfig::new(21).with_base(profile));
    let (pq, _end) = run_pq(config, steady_arrivals(), tw.set_period());

    let health = pq.analysis().health();
    assert!(health.checkpoints_dropped > 0, "{health:?}");
    assert!(health.coverage_gaps > 0, "{health:?}");
    assert!(health.gap_ns > 0, "{health:?}");
    assert!(!health.is_healthy());

    let gaps = pq.analysis().coverage_gaps(0);
    assert!(!gaps.is_empty());
    let gap = gaps[0];
    assert!(gap.to - gap.from > tw.set_period(), "gap longer than t_set");

    // A query spanning the gap is flagged; the gap interval is attached.
    let est = pq
        .analysis()
        .query_time_windows(0, QueryInterval::new(gap.from, gap.to));
    assert!(est.degraded);
    assert!(est
        .gaps
        .iter()
        .any(|g| g.overlaps(QueryInterval::new(gap.from, gap.to))));
}

#[test]
fn queue_monitor_answers_carry_staleness_and_degrade() {
    let tw = small_tw();
    let config = PrintQueueConfig::single_port(tw, 640);
    let (pq, end) = run_pq(config, steady_arrivals(), tw.set_period());

    // A query near a checkpoint is fresh.
    let last = *frozen_ats(&pq).last().expect("checkpoints exist");
    let fresh = pq.analysis().query_queue_monitor(0, last).expect("answer");
    assert_eq!(fresh.staleness, 0);
    assert!(!fresh.degraded);

    // A query far past the last freeze is stale beyond t_set → degraded.
    let stale = pq
        .analysis()
        .query_queue_monitor(0, end + 20 * tw.set_period())
        .expect("answer");
    assert!(stale.staleness > tw.set_period());
    assert!(stale.degraded);
}

#[test]
fn drop_storm_and_trigger_flood_under_faults_never_panic() {
    // The robustness suite's worst cases, now with every fault class on at
    // once: reads fail, take time, stall periodically, and lose
    // checkpoints — while a zero-cooldown trigger floods on-demand reads
    // and the tiny buffer tail-drops most packets.
    let tw = small_tw();
    let profile = FaultProfile {
        read_failure_prob: 0.3,
        read_latency: LatencyModel::Uniform(1_000, 50_000),
        drop_checkpoint_prob: 0.2,
        stall: Some(StallWindows {
            period: 500_000,
            duration: 150_000,
        }),
    };
    let mut config = PrintQueueConfig::single_port(tw, 640)
        .with_faults(FaultConfig::new(13).with_base(profile))
        .with_trigger(DataPlaneTrigger {
            min_deq_timedelta: 1,
            min_enq_qdepth: 1,
            cooldown: 0,
        });
    config.control.max_snapshots = 64;
    config.control.poll_period = tw.set_period();

    let mut pq = PrintQueue::new(config);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 100)); // drop storm
    let arrivals: Vec<Arrival> = (0..20_000u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId((i % 7) as u32), 1500, i * 300), 0))
        .collect();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(arrivals, &mut hooks, tw.set_period());
    }

    // Everything still answers; the ring stays bounded; accounting is sane.
    assert!(pq.analysis().checkpoints(0).len() <= 64);
    let health = pq.analysis().health();
    assert!(health.polls_attempted > 0);
    assert!(health.polls_failed > 0);
    let est = pq
        .analysis()
        .query_time_windows(0, QueryInterval::new(0, sw.now()));
    assert!(est.total().is_finite());
}

#[test]
fn same_seed_reproduces_the_same_faulted_run() {
    let tw = small_tw();
    let profile = FaultProfile {
        read_failure_prob: 0.25,
        read_latency: LatencyModel::Uniform(500, 9_000),
        drop_checkpoint_prob: 0.1,
        stall: None,
    };
    let make = || {
        PrintQueueConfig::single_port(tw, 640).with_faults(FaultConfig::new(77).with_base(profile))
    };
    let (pq_a, _) = run_pq(make(), steady_arrivals(), tw.set_period());
    let (pq_b, _) = run_pq(make(), steady_arrivals(), tw.set_period());
    assert_eq!(pq_a.analysis().health(), pq_b.analysis().health());
    assert_eq!(frozen_ats(&pq_a), frozen_ats(&pq_b));
    assert_eq!(
        pq_a.analysis().coverage_gaps(0),
        pq_b.analysis().coverage_gaps(0)
    );
}
